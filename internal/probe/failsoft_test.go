package probe

import (
	"context"
	"errors"
	"net/netip"
	"strings"
	"testing"

	"arest/internal/netsim"
	"arest/internal/obs"
)

// metricsFor binds a fresh registry to the tracer and returns a counter
// lookup over its deterministic snapshot section.
func metricsFor(tc *Tracer) func(name string) uint64 {
	reg := obs.New()
	tc.Metrics = NewMetrics(reg)
	return func(name string) uint64 {
		return reg.Snapshot().Deterministic().Counters["probe."+name]
	}
}

func TestTracePersistentFaultHaltsWithError(t *testing.T) {
	tn := build(t, netsim.ModeIP, true, true)
	tc := NewTracer(FaultConn{Conn: NetsimConn{Net: tn.net}}, tn.vp)
	count := metricsFor(tc)

	tr, err := tc.Trace(context.Background(), tn.target, 0)
	if err != nil {
		t.Fatalf("Trace returned an error despite fail-soft contract: %v", err)
	}
	if !tr.Failed() || tr.Halt != HaltError {
		t.Fatalf("halt = %v, want error\n%s", tr.Halt, tr)
	}
	if !strings.Contains(tr.Err, "injected fault") {
		t.Errorf("Err = %q, want the injected error text", tr.Err)
	}
	if len(tr.Hops) != 0 {
		t.Errorf("hops = %d, want 0 (first TTL never completed)", len(tr.Hops))
	}
	if len(tr.RevealErrs) != 0 {
		t.Errorf("RevealErrs = %v on an error-halted trace (revelation must be skipped)", tr.RevealErrs)
	}
	// One initial attempt plus the full retry budget, all errored.
	if got := count("exchange_errors"); got != uint64(1+tc.Retries) {
		t.Errorf("exchange_errors = %d, want %d", got, 1+tc.Retries)
	}
	if got := count("retries"); got != uint64(tc.Retries) {
		t.Errorf("retries = %d, want %d", got, tc.Retries)
	}
	if got := count("halt.error"); got != 1 {
		t.Errorf("halt.error = %d, want 1", got)
	}
	if got := count("reveal.triggers"); got != 0 {
		t.Errorf("reveal.triggers = %d, want 0 (revelation skipped on HaltError)", got)
	}
}

func TestTraceFaultKeepsMeasuredHops(t *testing.T) {
	tn := build(t, netsim.ModeIP, true, true)
	// Fail every probe with TTL >= 3: the sweep measures hops 1 and 2, then
	// the transport dies. The IPv4 TTL sits at byte 8 of the wire header.
	fc := FaultConn{Conn: NetsimConn{Net: tn.net},
		Match: func(src netip.Addr, wire []byte) bool { return wire[8] >= 3 }}
	tc := NewTracer(fc, tn.vp)
	count := metricsFor(tc)

	tr, err := tc.Trace(context.Background(), tn.target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Halt != HaltError {
		t.Fatalf("halt = %v, want error\n%s", tr.Halt, tr)
	}
	if len(tr.Hops) != 2 {
		t.Fatalf("kept hops = %d, want 2\n%s", len(tr.Hops), tr)
	}
	for i, h := range tr.Hops {
		if !h.Responded() || h.TTL != i+1 {
			t.Errorf("kept hop %d = %+v, want a responding hop at TTL %d", i, h, i+1)
		}
	}
	if got := count("exchange_errors"); got != uint64(1+tc.Retries) {
		t.Errorf("exchange_errors = %d, want %d (only TTL 3 errored)", got, 1+tc.Retries)
	}
}

// flakyConn fails the first exchange for each probe TTL and passes the
// rest through: a transient fault that a retry budget should absorb.
type flakyConn struct {
	conn Conn
	seen map[uint8]int
}

func (c *flakyConn) Exchange(ctx context.Context, src netip.Addr, wire []byte) ([]byte, float64, error) {
	ttl := wire[8]
	c.seen[ttl]++
	if c.seen[ttl] == 1 {
		return nil, 0, ErrInjected
	}
	return c.conn.Exchange(ctx, src, wire)
}

func TestTraceTransientFaultHealedByRetries(t *testing.T) {
	tn := build(t, netsim.ModeIP, true, true)
	tc := NewTracer(&flakyConn{conn: NetsimConn{Net: tn.net}, seen: map[uint8]int{}}, tn.vp)
	count := metricsFor(tc)

	tr, err := tc.Trace(context.Background(), tn.target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Reached() {
		t.Fatalf("halt = %v, want reached — retries must absorb transient faults\n%s", tr.Halt, tr)
	}
	if tr.Err != "" {
		t.Errorf("Err = %q on a healed trace", tr.Err)
	}
	if len(tr.Hops) != 7 {
		t.Fatalf("hops = %d, want 7\n%s", len(tr.Hops), tr)
	}
	// Exactly one errored attempt and one retry per TTL probed.
	if ex, re := count("exchange_errors"), count("retries"); ex != 7 || re != 7 {
		t.Errorf("exchange_errors = %d, retries = %d, want 7 each", ex, re)
	}
	if got := count("halt.error"); got != 0 {
		t.Errorf("halt.error = %d, want 0", got)
	}
}

func TestTraceRevealAuxFaultRecorded(t *testing.T) {
	// Opaque tunnel (pipe + RFC4950): revelation triggers a DPR trace toward
	// the ending hop's interface address. Fail exactly the probes whose
	// destination is not the main target — the auxiliary sweep — so the main
	// trace survives while every revelation attempt dies.
	tn := build(t, netsim.ModeSR, false, true)
	fc := FaultConn{Conn: NetsimConn{Net: tn.net},
		Match: func(src netip.Addr, wire []byte) bool {
			return netip.AddrFrom4([4]byte(wire[16:20])) != tn.target
		}}
	tc := NewTracer(fc, tn.vp)
	count := metricsFor(tc)

	tr, err := tc.Trace(context.Background(), tn.target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Reached() {
		t.Fatalf("main trace did not survive aux faults: halt = %v\n%s", tr.Halt, tr)
	}
	for _, h := range tr.Hops {
		if h.Revealed {
			t.Errorf("hop %s revealed despite failing DPR", h.Addr)
		}
	}
	if len(tr.RevealErrs) == 0 {
		t.Fatal("no RevealErrs recorded for the failed DPR")
	}
	for _, e := range tr.RevealErrs {
		if !strings.Contains(e, "injected fault") {
			t.Errorf("RevealErrs entry %q does not carry the injected error", e)
		}
	}
	if got := count("reveal.errors"); got != uint64(len(tr.RevealErrs)) {
		t.Errorf("reveal.errors = %d, want %d (one per RevealErrs entry)", got, len(tr.RevealErrs))
	}
	if got := count("reveal.hops"); got != 0 {
		t.Errorf("reveal.hops = %d, want 0", got)
	}
	// The trace still classifies: the opaque ending-hop LSE carries the
	// hidden length even when revelation is unavailable.
	tuns := ClassifyTunnels(tr)
	if len(tuns) != 1 || tuns[0].Type != TunnelOpaque || tuns[0].HiddenLen != 3 {
		t.Errorf("tunnels = %+v, want one opaque with HiddenLen 3", tuns)
	}
}

// TestRevealedTTLsContiguous pins the splice renumbering: revealed hops
// fill the gap after their predecessor and the tail shifts by the revealed
// count, so hop TTLs are exactly 1..len(Hops) across the augmented trace.
func TestRevealedTTLsContiguous(t *testing.T) {
	for _, tt := range []struct {
		name    string
		rfc4950 bool
	}{
		{"opaque", true},
		{"invisible", false},
	} {
		t.Run(tt.name, func(t *testing.T) {
			tn := build(t, netsim.ModeSR, false, tt.rfc4950)
			tr, err := tn.tracer().Trace(context.Background(), tn.target, 0)
			if err != nil {
				t.Fatal(err)
			}
			revealed := 0
			for i, h := range tr.Hops {
				if h.Revealed {
					revealed++
				}
				if h.TTL != i+1 {
					t.Errorf("hop %d has TTL %d, want %d\n%s", i, h.TTL, i+1, tr)
				}
			}
			if revealed != 3 {
				t.Fatalf("revealed hops = %d, want 3\n%s", revealed, tr)
			}
		})
	}
}

func TestPingAndSampleIPIDPropagateErrors(t *testing.T) {
	tn := build(t, netsim.ModeIP, true, true)
	tc := NewTracer(FaultConn{Conn: NetsimConn{Net: tn.net}}, tn.vp)
	count := metricsFor(tc)

	if _, ok, err := tc.Ping(context.Background(), tn.pe1.Loopback, 7); !errors.Is(err, ErrInjected) || ok {
		t.Errorf("Ping: ok=%v err=%v, want the injected error surfaced", ok, err)
	}
	if _, ok, err := tc.SampleIPID(context.Background(), tn.pe1.Loopback, 0); !errors.Is(err, ErrInjected) || ok {
		t.Errorf("SampleIPID: ok=%v err=%v, want the injected error surfaced", ok, err)
	}
	if got := count("exchange_errors"); got != 2 {
		t.Errorf("exchange_errors = %d, want 2", got)
	}
}

func TestFaultConnCustomError(t *testing.T) {
	sentinel := errors.New("interface down")
	fc := FaultConn{Conn: nil, Err: sentinel}
	_, _, err := fc.Exchange(context.Background(), netip.MustParseAddr("172.16.0.1"), make([]byte, 20))
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want the configured sentinel", err)
	}
}
