package core

import "net/netip"

// Report is the JSON-serializable outcome of analyzing one path, the
// stable output format of cmd/arest -json.
type Report struct {
	VP       netip.Addr      `json:"vp"`
	Dst      netip.Addr      `json:"dst"`
	Segments []SegmentReport `json:"segments,omitempty"`
	Areas    []string        `json:"areas"`
	Tunnels  []TunnelReport  `json:"tunnels,omitempty"`
	HasSR    bool            `json:"has_sr"`
}

// SegmentReport is one detected segment with its hops spelled out.
type SegmentReport struct {
	Flag        string       `json:"flag"`
	Stars       int          `json:"stars"`
	Label       uint32       `json:"label"`
	SuffixMatch bool         `json:"suffix_match,omitempty"`
	Hops        []netip.Addr `json:"hops"`
	StackDepths []int        `json:"stack_depths"`
}

// TunnelReport describes one labeled tunnel's cloud structure.
type TunnelReport struct {
	Pattern      string       `json:"pattern"`
	Interworking bool         `json:"interworking"`
	Clouds       []CloudStat  `json:"clouds"`
	Hops         []netip.Addr `json:"hops"`
}

// CloudStat is one homogeneous region of a tunnel.
type CloudStat struct {
	Kind string `json:"kind"`
	Len  int    `json:"len"`
}

// NewReport converts an analysis result into its serializable form.
func NewReport(res *Result) *Report {
	rep := &Report{
		VP:    res.Path.VP,
		Dst:   res.Path.Dst,
		HasSR: res.HasSR(),
		Areas: make([]string, len(res.Areas)),
	}
	for i, a := range res.Areas {
		rep.Areas[i] = a.String()
	}
	for _, s := range res.Segments {
		sr := SegmentReport{
			Flag:        s.Flag.String(),
			Stars:       s.Flag.Stars(),
			Label:       s.Label,
			SuffixMatch: s.SuffixMatch,
			StackDepths: s.StackDepths,
		}
		for k := s.Start; k <= s.End; k++ {
			sr.Hops = append(sr.Hops, res.Path.Hops[k].Addr)
		}
		rep.Segments = append(rep.Segments, sr)
	}
	for _, t := range res.Tunnels() {
		tr := TunnelReport{
			Pattern:      string(t.Pattern),
			Interworking: t.Interworking(),
		}
		for _, cl := range t.Clouds {
			tr.Clouds = append(tr.Clouds, CloudStat{Kind: cl.Kind.String(), Len: cl.Len})
		}
		for k := t.Start; k <= t.End; k++ {
			tr.Hops = append(tr.Hops, res.Path.Hops[k].Addr)
		}
		rep.Tunnels = append(rep.Tunnels, tr)
	}
	return rep
}
