package probe

import (
	"context"
	"testing"

	"arest/internal/netsim"
)

// Round-trip benchmarks over the simulator: probe construction, forwarding,
// reply construction, and reply decoding — the whole wire path the
// allocation work targets. Run with -benchmem; allocs/op is the headline
// number the BENCH_6.json baseline tracks.

func BenchmarkTraceRoundTrip(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    netsim.TunnelMode
	}{{"sr", netsim.ModeSR}, {"ldp", netsim.ModeLDP}, {"ip", netsim.ModeIP}} {
		b.Run(mode.name, func(b *testing.B) {
			tn := buildBench(b, mode.m)
			tr := tn.tracer()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := tr.Trace(context.Background(), tn.target, uint16(i%4))
				if err != nil {
					b.Fatal(err)
				}
				if !res.Reached() {
					b.Fatalf("halt = %v", res.Halt)
				}
			}
		})
	}
}

func BenchmarkProbeOnceRoundTrip(b *testing.B) {
	tn := buildBench(b, netsim.ModeSR)
	tr := tn.tracer()
	tr.Reveal = false
	s := probeScratchPool.Get().(*probeScratch)
	defer probeScratchPool.Put(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hop, err := tr.probeOnce(context.Background(), s, tn.target, 4, 33434, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !hop.Responded() {
			b.Fatal("silent hop")
		}
	}
}

// buildBench mirrors the test fixture without a *testing.T.
func buildBench(b *testing.B, mode netsim.TunnelMode) *testNet {
	b.Helper()
	// build only uses t for Helper/Fatal on construction, which cannot
	// fail for the canonical chain; adapt via a throwaway T-like shim is
	// not possible, so inline the topology through the shared builder.
	return buildNet(mode, true, true)
}
