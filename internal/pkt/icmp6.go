package pkt

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// ICMPv6 types used by a v6 measurement pipeline.
const (
	ICMPv6DestUnreachable = 1
	ICMPv6TimeExceeded    = 3
	ICMPv6EchoRequest     = 128
	ICMPv6EchoReply       = 129
)

// ICMPv6 is an ICMPv6 message. The checksum covers an IPv6 pseudo-header,
// so Marshal and Unmarshal take the enclosing addresses. Error messages
// carry the quoted original datagram in Body and may carry RFC 4884
// extension objects — RFC 4950 label quoting applies to ICMPv6 as well
// (6PE deployments emit exactly that).
type ICMPv6 struct {
	Type       uint8
	Code       uint8
	ID         uint16 // echo only
	Seq        uint16 // echo only
	Body       []byte
	Extensions []ExtensionObject
}

// IsError reports whether the message quotes an original datagram.
func (m *ICMPv6) IsError() bool {
	return m.Type == ICMPv6TimeExceeded || m.Type == ICMPv6DestUnreachable
}

// Marshal serializes the message, computing the pseudo-header checksum.
// Like its v4 counterpart, an error message with extensions is emitted in
// RFC 4884 form — for ICMPv6 the length attribute sits in the first octet
// of the unused field and counts 8-octet units.
func (m *ICMPv6) Marshal(src, dst netip.Addr) ([]byte, error) {
	if !src.Is6() || !dst.Is6() {
		return nil, fmt.Errorf("%w: ICMPv6 needs IPv6 endpoints", ErrBadHeader)
	}
	var b []byte
	switch {
	case m.Type == ICMPv6EchoRequest || m.Type == ICMPv6EchoReply:
		b = make([]byte, icmpHeaderLen+len(m.Body))
		binary.BigEndian.PutUint16(b[4:], m.ID)
		binary.BigEndian.PutUint16(b[6:], m.Seq)
		copy(b[icmpHeaderLen:], m.Body)
	case m.IsError():
		orig := m.Body
		if len(m.Extensions) > 0 {
			padded := make([]byte, origDatagramPadLen)
			if len(orig) > origDatagramPadLen {
				orig = orig[:origDatagramPadLen]
			}
			copy(padded, orig)
			ext, err := marshalExtensions(m.Extensions)
			if err != nil {
				return nil, err
			}
			b = make([]byte, icmpHeaderLen+len(padded)+len(ext))
			b[4] = origDatagramPadLen / 8 // RFC 4884: 8-octet units for ICMPv6
			copy(b[icmpHeaderLen:], padded)
			copy(b[icmpHeaderLen+len(padded):], ext)
		} else {
			b = make([]byte, icmpHeaderLen+len(orig))
			copy(b[icmpHeaderLen:], orig)
		}
	default:
		return nil, fmt.Errorf("%w: unsupported ICMPv6 type %d", ErrBadHeader, m.Type)
	}
	b[0] = m.Type
	b[1] = m.Code
	binary.BigEndian.PutUint16(b[2:], icmp6Checksum(src, dst, b))
	return b, nil
}

// UnmarshalICMPv6 parses an ICMPv6 message, verifying the pseudo-header
// checksum and any RFC 4884 extension structure.
func UnmarshalICMPv6(src, dst netip.Addr, b []byte) (*ICMPv6, error) {
	if len(b) < icmpHeaderLen {
		return nil, ErrShortPacket
	}
	if icmp6Checksum(src, dst, b) != 0 {
		return nil, ErrBadChecksum
	}
	m := &ICMPv6{Type: b[0], Code: b[1]}
	switch {
	case m.Type == ICMPv6EchoRequest || m.Type == ICMPv6EchoReply:
		m.ID = binary.BigEndian.Uint16(b[4:])
		m.Seq = binary.BigEndian.Uint16(b[6:])
		m.Body = append([]byte(nil), b[icmpHeaderLen:]...)
	case m.IsError():
		units := int(b[4])
		rest := b[icmpHeaderLen:]
		if units == 0 {
			m.Body = append([]byte(nil), rest...)
			return m, nil
		}
		origLen := units * 8
		if origLen < origDatagramPadLen {
			return nil, fmt.Errorf("%w: length field %d units", ErrBadExtension, units)
		}
		if len(rest) < origLen {
			return nil, fmt.Errorf("%w: original datagram truncated", ErrBadExtension)
		}
		m.Body = trimOriginalV6(rest[:origLen])
		objs, err := unmarshalExtensions(rest[origLen:])
		if err != nil {
			return nil, err
		}
		m.Extensions = objs
	default:
		return nil, fmt.Errorf("%w: unsupported ICMPv6 type %d", ErrBadHeader, m.Type)
	}
	return m, nil
}

// trimOriginalV6 strips RFC 4884 padding from a quoted IPv6 datagram.
func trimOriginalV6(b []byte) []byte {
	if len(b) >= IPv6HeaderLen && b[0]>>4 == 6 {
		total := IPv6HeaderLen + int(binary.BigEndian.Uint16(b[4:]))
		if total >= IPv6HeaderLen && total <= len(b) {
			return append([]byte(nil), b[:total]...)
		}
	}
	return append([]byte(nil), b...)
}

// MPLSStack extracts the RFC 4950 label stack object, if present — 6PE
// LSRs quote the v4-transport labels under IPv6 payloads exactly like
// their v4 counterparts.
func (m *ICMPv6) MPLSStack() (stack []byte, ok bool) {
	for _, o := range m.Extensions {
		if o.Class == ClassMPLSLabelStack && o.CType == CTypeIncomingStack {
			return o.Payload, true
		}
	}
	return nil, false
}

// icmp6Checksum folds the IPv6 pseudo-header (RFC 8200 §8.1) and message.
func icmp6Checksum(src, dst netip.Addr, msg []byte) uint16 {
	var pseudo [40]byte
	s, d := src.As16(), dst.As16()
	copy(pseudo[0:16], s[:])
	copy(pseudo[16:32], d[:])
	binary.BigEndian.PutUint32(pseudo[32:], uint32(len(msg)))
	pseudo[39] = ProtoICMPv6
	return finish(sum(msg, sum(pseudo[:], 0)))
}
