package probe

// ClassifyTunnels partitions a trace into MPLS tunnels following the
// Donnet et al. taxonomy:
//
//   - explicit: a run of hops quoting LSEs with propagated (small) TTLs;
//   - opaque: an LSE quote with a pipe-model TTL (≈255-len) at the ending
//     hop only, possibly preceded by TNT-revealed hops;
//   - invisible: TNT-revealed hops (or an RTLA length jump) with no LSE
//     evidence at all;
//   - implicit: hops quoting no LSE but whose quoted IP TTL (qTTL) forms
//     the 1,2,3,... staircase that only arises when the IP TTL is frozen
//     inside a tunnel while probes expire on the LSE TTL.
func ClassifyTunnels(tr *Trace) []Tunnel {
	var out []Tunnel
	n := len(tr.Hops)
	for i := 0; i < n; i++ {
		h := &tr.Hops[i]
		if !h.Responded() {
			continue
		}
		switch {
		case h.Revealed:
			// A revealed run, terminated by its ending hop.
			start := i
			for i+1 < n && tr.Hops[i+1].Revealed {
				i++
			}
			hidden := i - start + 1
			typ := TunnelInvisible
			if i+1 < n && tr.Hops[i+1].HasStack() && tr.Hops[i+1].Stack[0].TTL > opaqueTTLFloor {
				typ = TunnelOpaque
				i++ // include the ending hop with its LSE
			} else if i+1 < n && tr.Hops[i+1].Responded() && !tr.Hops[i+1].HasStack() {
				i++ // include the ending hop
			}
			out = append(out, Tunnel{Start: start, End: i, Type: typ, HiddenLen: hidden})
		case h.HasStack() && h.Stack[0].TTL > opaqueTTLFloor:
			// Opaque ending hop with no revelation available.
			out = append(out, Tunnel{Start: i, End: i, Type: TunnelOpaque,
				HiddenLen: 255 - int(h.Stack[0].TTL)})
		case h.HasStack():
			start := i
			for i+1 < n && tr.Hops[i+1].HasStack() && tr.Hops[i+1].Stack[0].TTL <= opaqueTTLFloor {
				i++
			}
			out = append(out, Tunnel{Start: start, End: i, Type: TunnelExplicit})
		case h.QTTL == 2 && i > 0 && tr.Hops[i-1].Responded() && tr.Hops[i-1].QTTL == 1 && !tr.Hops[i-1].HasStack():
			// Implicit staircase: the hop before the first qTTL=2 hop is
			// the first LSR (its own qTTL of 1 is indistinguishable alone).
			start := i - 1
			if len(out) > 0 && out[len(out)-1].End >= start {
				start = i
			}
			q := h.QTTL
			for i+1 < n && tr.Hops[i+1].Responded() && tr.Hops[i+1].QTTL == q+1 && !tr.Hops[i+1].HasStack() {
				i++
				q++
			}
			out = append(out, Tunnel{Start: start, End: i, Type: TunnelImplicit})
		default:
			// Plain hop; also check for an un-revealed invisible tunnel via
			// the RTLA jump to the next responding hop.
			if i+1 < n && tr.Hops[i+1].Responded() && !tr.Hops[i+1].Revealed &&
				!tr.Hops[i+1].HasStack() {
				jump := returnPathLen(tr.Hops[i+1].ReplyTTL) - returnPathLen(h.ReplyTTL)
				if jump > 1 {
					out = append(out, Tunnel{Start: i + 1, End: i + 1,
						Type: TunnelInvisible, HiddenLen: jump - 1})
					i++
				}
			}
		}
	}
	return out
}

// HasExplicitTunnel reports whether the trace contains at least one
// explicit tunnel (the precondition for the label-sequence AReST flags).
func HasExplicitTunnel(tr *Trace) bool {
	for _, tun := range ClassifyTunnels(tr) {
		if tun.Type == TunnelExplicit {
			return true
		}
	}
	return false
}
