// Command arest runs the AReST detection methodology over a stored
// campaign and reports detected SR-MPLS segments, per-flag statistics,
// and interworking tunnels. The input format is sniffed: an arest.archive
// record stream (as cmd/tntsim emits) replays the full campaign — traces
// plus the archived fingerprint and bdrmap annotations. A v2 archive is
// analyzed as a one-pass stream, traces folded in fixed-size batches, so
// memory stays bounded by the report state rather than the campaign size;
// a v1 archive (side data after the traces) is materialized first. The
// legacy JSON-Lines trace format still works and analyzes bare traces.
//
// Usage:
//
//	arest -i campaign.arest [-v]
//	arest -i traces.jsonl [-fingerprints fp.txt] [-v]
//
// The optional fingerprint file maps interface addresses to vendors, one
// "addr vendor [snmp|ttl]" per line; its entries override any archived
// annotations.
//
// Shutdown: the first SIGINT/SIGTERM cancels the analysis at the next
// batch boundary and exits with status 3; a second signal aborts
// immediately. -deadline bounds the run the same way.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/netip"
	"os"
	"strings"

	"arest/internal/archive"
	"arest/internal/core"
	"arest/internal/eval"
	"arest/internal/fingerprint"
	"arest/internal/lifecycle"
	"arest/internal/mpls"
	"arest/internal/obs"
	"arest/internal/par"
	"arest/internal/probe"
	"arest/internal/tracestore"
)

// analyzeBatch bounds the traces in flight between input decode and report
// accumulation. Fixed (never derived from the worker count) so batch
// boundaries and all reporting are identical at any concurrency.
const analyzeBatch = 256

// analysis accumulates the whole report one trace at a time: each batch
// fans out across the worker pool into index slots, then reporting walks
// the slots in input order — output is identical at every worker count and
// independent of whether traces arrive from a stream or a materialized
// campaign. A cancelled ctx aborts at the next batch boundary through the
// sticky err, so an interrupted analysis never reports partial batches.
type analysis struct {
	ctx     context.Context
	det     *core.Detector
	ann     *fingerprint.Annotator
	asOf    func(netip.Addr) int
	workers int
	reg     *obs.Registry
	verbose bool
	out     io.Writer
	enc     *json.Encoder // non-nil in -json mode

	traces       int
	tracesWithSR int
	flagCounts   map[core.Flag]int
	patterns     map[core.Pattern]int

	batch   []*probe.Trace
	paths   []*core.Path
	results []*core.Result
	err     error
}

func newAnalysis(ctx context.Context, det *core.Detector, workers int, reg *obs.Registry, out io.Writer) *analysis {
	return &analysis{
		ctx:        ctx,
		det:        det,
		workers:    workers,
		reg:        reg,
		out:        out,
		flagCounts: map[core.Flag]int{},
		patterns:   map[core.Pattern]int{},
		batch:      make([]*probe.Trace, 0, analyzeBatch),
		paths:      make([]*core.Path, analyzeBatch),
		results:    make([]*core.Result, analyzeBatch),
	}
}

func (a *analysis) add(tr *probe.Trace) {
	a.batch = append(a.batch, tr)
	if len(a.batch) == analyzeBatch {
		a.flush()
	}
}

func (a *analysis) flush() {
	n := len(a.batch)
	if n == 0 || a.err != nil {
		return
	}
	done := a.reg.Span("core", "stage.analyze").Start()
	err := par.ForEach(a.ctx, a.workers, n, func(i int) {
		a.paths[i] = core.BuildPath(a.batch[i], a.ann, a.asOf)
		a.results[i] = a.det.Analyze(a.paths[i])
	})
	done()
	if err != nil {
		a.err = err
		return
	}
	for i := 0; i < n; i++ {
		a.report(a.batch[i], a.paths[i], a.results[i])
		a.paths[i], a.results[i] = nil, nil
	}
	a.batch = a.batch[:0]
}

// report folds one analyzed trace into the counters and, when configured,
// emits its verbose segment lines or JSON report in input order.
func (a *analysis) report(tr *probe.Trace, p *core.Path, res *core.Result) {
	a.traces++
	if res.HasSR() {
		a.tracesWithSR++
	}
	if a.reg != nil {
		a.reg.Counter("core", "traces").Inc()
		if res.HasSR() {
			a.reg.Counter("core", "traces_with_sr").Inc()
		}
		a.reg.Counter("core", "segments").Add(uint64(len(res.Segments)))
		for _, s := range res.Segments {
			a.reg.Counter("core", "flag."+s.Flag.String()).Inc()
		}
	}
	for _, s := range res.Segments {
		a.flagCounts[s.Flag]++
		if a.verbose {
			fmt.Fprintf(a.out, "%s -> %s  %-4s stars=%d label=%d hops=%d", tr.VP, tr.Dst,
				s.Flag, s.Flag.Stars(), s.Label, s.Len())
			if s.SuffixMatch {
				fmt.Fprint(a.out, " (suffix)")
			}
			fmt.Fprintln(a.out)
			for k := s.Start; k <= s.End; k++ {
				fmt.Fprintf(a.out, "    %-15s %s\n", p.Hops[k].Addr, p.Hops[k].Stack)
			}
		}
	}
	for _, tun := range res.Tunnels() {
		a.patterns[tun.Pattern]++
		if a.reg != nil {
			a.reg.Counter("core", "pattern."+string(tun.Pattern)).Inc()
		}
	}
	if a.enc != nil && a.err == nil {
		a.err = a.enc.Encode(core.NewReport(res))
	}
}

// campaignVisitor folds a v2 archive straight into the analysis: side
// records accumulate annotation state, sealed (with any CLI fingerprint
// overrides merged in) when the first trace arrives.
type campaignVisitor struct {
	an                *analysis
	meta              tracestore.Meta
	snmp, ttl         map[netip.Addr]mpls.Vendor
	overSNMP, overTTL map[netip.Addr]mpls.Vendor
	borders           map[netip.Addr]int
	sealed            bool
}

func (v *campaignVisitor) Meta(m archive.Meta) error {
	v.meta = tracestore.Meta{ASN: m.Record.ASN, Name: m.Record.Name, Seed: m.Seed}
	return nil
}

func (v *campaignVisitor) VP(archive.VPRecord) error {
	v.meta.VPs++
	return nil
}

func (v *campaignVisitor) Fingerprint(rec archive.FingerprintRecord) error {
	switch rec.Source {
	case archive.SourceSNMP:
		v.snmp[rec.Addr] = rec.Vendor
	case archive.SourceTTL:
		v.ttl[rec.Addr] = rec.Vendor
	}
	return nil
}

// AliasSet, SREnabled, Degraded: measurement-side records the detection
// report does not consume.
func (v *campaignVisitor) AliasSet(archive.AliasSetRecord) error   { return nil }
func (v *campaignVisitor) SREnabled(archive.SREnabledRecord) error { return nil }
func (v *campaignVisitor) Degraded(archive.Degraded) error         { return nil }

func (v *campaignVisitor) Border(rec archive.BorderRecord) error {
	v.borders[rec.Addr] = rec.ASN
	return nil
}

func (v *campaignVisitor) Trace(rec archive.TraceRecord) error {
	if !v.sealed {
		v.seal()
	}
	v.an.add(rec.Trace)
	// A cancelled (or otherwise failed) analysis aborts the stream at the
	// next record instead of decoding the rest of the archive.
	return v.an.err
}

func (v *campaignVisitor) seal() {
	v.sealed = true
	for a, vend := range v.overSNMP {
		v.snmp[a] = vend
	}
	for a, vend := range v.overTTL {
		v.ttl[a] = vend
	}
	v.an.ann = fingerprint.NewAnnotator(v.snmp, v.ttl)
	if len(v.borders) > 0 {
		borders := v.borders
		v.an.asOf = func(a netip.Addr) int { return borders[a] }
	}
}

func main() {
	sigs, stopNotify := lifecycle.Notify()
	defer stopNotify()
	hard := func() {
		fmt.Fprintln(os.Stderr, "arest: second signal: aborting immediately")
		os.Exit(lifecycle.ExitFailure)
	}
	os.Exit(run(os.Args[1:], sigs, hard, os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable body of the command (see cmd/experiments): signals
// come from an injected channel and the exit status is returned.
func run(argv []string, sigs <-chan os.Signal, hard func(), stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("arest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("i", "", "input trace file (JSON lines; default stdin)")
	fpFile := fs.String("fingerprints", "", "vendor fingerprint file (addr vendor [snmp|ttl])")
	verbose := fs.Bool("v", false, "print every detected segment")
	jsonOut := fs.Bool("json", false, "emit one JSON report per trace instead of tables")
	noSuffix := fs.Bool("no-suffix", false, "disable suffix-based label matching")
	workers := fs.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS, 1 = sequential)")
	deadline := fs.Duration("deadline", 0, "wall-clock budget for the analysis; on expiry it drains like a first signal and exits with status 3")
	metricsOut := fs.String("metrics", "", "export analysis metrics to <file> (.json = JSON, else summary table, - = stdout)")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	if err := fs.Parse(argv); err != nil {
		return lifecycle.ExitFailure
	}
	errorf := func(format string, args ...interface{}) int {
		fmt.Fprintf(stderr, "arest: "+format+"\n", args...)
		return lifecycle.ExitFailure
	}

	if *pprofAddr != "" {
		addr, err := obs.ServePprof(*pprofAddr)
		if err != nil {
			return errorf("pprof: %v", err)
		}
		fmt.Fprintf(stderr, "pprof listening on http://%s/debug/pprof/\n", addr)
	}
	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.New()
	}

	parent := context.Background()
	if *deadline > 0 {
		var cancel context.CancelFunc
		parent, cancel = context.WithTimeout(parent, *deadline)
		defer cancel()
	}
	ctx, stopSig := lifecycle.Context(parent, sigs, hard)
	defer stopSig()

	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return errorf("open %s: %v", *in, err)
		}
		defer f.Close()
		r = f
	}

	// CLI-supplied fingerprints override archived annotations.
	fsnmp := map[netip.Addr]mpls.Vendor{}
	fttl := map[netip.Addr]mpls.Vendor{}
	if *fpFile != "" {
		var err error
		fsnmp, fttl, err = loadFingerprints(*fpFile)
		if err != nil {
			return errorf("fingerprints: %v", err)
		}
	}

	det := core.NewDetector()
	det.SuffixMatching = !*noSuffix
	an := newAnalysis(ctx, det, par.Workers(*workers), reg, stdout)
	an.verbose = *verbose
	if *jsonOut {
		an.enc = json.NewEncoder(stdout)
	}

	// Sniff the input format and drive the analysis. A v2 archive streams;
	// a v1 archive or a JSONL tracestore is materialized and replayed
	// through the identical accumulator.
	br := bufio.NewReader(r)
	var meta tracestore.Meta
	if archive.Sniff(br) {
		ar, err := archive.NewReader(br)
		if err != nil {
			return errorf("read traces: %v", err)
		}
		if ar.Version() >= 2 {
			v := &campaignVisitor{
				an:       an,
				snmp:     map[netip.Addr]mpls.Vendor{},
				ttl:      map[netip.Addr]mpls.Vendor{},
				overSNMP: fsnmp,
				overTTL:  fttl,
				borders:  map[netip.Addr]int{},
			}
			// A stream error with an.err set is the analysis aborting the
			// stream (cancellation or encode failure) — handled below.
			if err := archive.StreamRecords(ar, v); err != nil && an.err == nil {
				return errorf("read traces: %v", err)
			}
			meta = v.meta
		} else {
			data, err := archive.ReadFrom(ar)
			if err != nil {
				return errorf("read traces: %v", err)
			}
			meta = tracestore.Meta{
				ASN:  data.Meta.Record.ASN,
				Name: data.Meta.Record.Name,
				Seed: data.Meta.Seed,
				VPs:  len(data.VPs),
			}
			for a, v := range fsnmp {
				data.SNMP[a] = v
			}
			for a, v := range fttl {
				data.TTL[a] = v
			}
			an.ann = fingerprint.NewAnnotator(data.SNMP, data.TTL)
			if len(data.Borders) > 0 {
				borders := data.Borders
				an.asOf = func(a netip.Addr) int { return borders[a] }
			}
			for _, tr := range data.Traces() {
				an.add(tr)
			}
		}
	} else {
		var traces []*probe.Trace
		var err error
		meta, traces, err = tracestore.Read(br)
		if err != nil {
			return errorf("read traces: %v", err)
		}
		an.ann = fingerprint.NewAnnotator(fsnmp, fttl)
		for _, tr := range traces {
			an.add(tr)
		}
	}
	an.flush()
	if an.err != nil {
		if lifecycle.Interrupted(an.err) {
			fmt.Fprintf(stderr, "arest: interrupted: %v (partial report suppressed; re-run to analyze)\n", an.err)
			return lifecycle.ExitInterrupted
		}
		return errorf("encode report: %v", an.err)
	}
	if an.traces == 0 {
		return errorf("no traces in input")
	}

	if reg != nil {
		snap := reg.Snapshot()
		if err := snap.ExportFile(*metricsOut); err != nil {
			return errorf("metrics: %v", err)
		}
		if *metricsOut != "-" {
			fmt.Fprint(stderr, snap.Summary())
		}
	}

	if *jsonOut {
		return lifecycle.ExitOK
	}

	if meta.Name != "" {
		fmt.Fprintf(stdout, "campaign: %s (AS%d), %d traces\n\n", meta.Name, meta.ASN, an.traces)
	} else {
		fmt.Fprintf(stdout, "%d traces\n\n", an.traces)
	}
	t := eval.Table{Title: "AReST detection summary", Headers: []string{"Flag", "Stars", "Segments"}}
	total := 0
	for _, f := range core.AllFlags {
		t.AddRow(f.String(), strings.Repeat("*", f.Stars()), an.flagCounts[f])
		total += an.flagCounts[f]
	}
	fmt.Fprint(stdout, t.Render())
	fmt.Fprintf(stdout, "total segments: %d; traces with strong SR evidence: %d/%d\n\n",
		total, an.tracesWithSR, an.traces)

	pt := eval.Table{Title: "Tunnel structure", Headers: []string{"Pattern", "Tunnels"}}
	for _, p := range []core.Pattern{core.PatternFullSR, core.PatternFullLDP, core.PatternSRLDP,
		core.PatternLDPSR, core.PatternLDPSRLDP, core.PatternSRLDPSR, core.PatternOther} {
		if an.patterns[p] > 0 {
			pt.AddRow(string(p), an.patterns[p])
		}
	}
	fmt.Fprint(stdout, pt.Render())
	return lifecycle.ExitOK
}

// loadFingerprints parses "addr vendor [snmp|ttl]" lines.
func loadFingerprints(path string) (snmp, ttl map[netip.Addr]mpls.Vendor, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	snmp = map[netip.Addr]mpls.Vendor{}
	ttl = map[netip.Addr]mpls.Vendor{}
	vendors := map[string]mpls.Vendor{
		"cisco": mpls.VendorCisco, "juniper": mpls.VendorJuniper,
		"huawei": mpls.VendorHuawei, "nokia": mpls.VendorNokia,
		"arista": mpls.VendorArista, "linux": mpls.VendorLinux,
		"mikrotik": mpls.VendorMikroTik, "cisco/huawei": mpls.VendorCiscoHuawei,
		"ciscohuawei": mpls.VendorCiscoHuawei,
	}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(fields) == 0 || strings.HasPrefix(fields[0], "#") {
			continue
		}
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("line %d: want 'addr vendor [snmp|ttl]'", line)
		}
		addr, err := netip.ParseAddr(fields[0])
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %v", line, err)
		}
		v, ok := vendors[strings.ToLower(fields[1])]
		if !ok {
			return nil, nil, fmt.Errorf("line %d: unknown vendor %q", line, fields[1])
		}
		src := "snmp"
		if len(fields) >= 3 {
			src = strings.ToLower(fields[2])
		}
		switch src {
		case "snmp", "snmpv3":
			snmp[addr] = v
		case "ttl":
			ttl[addr] = v
		default:
			return nil, nil, fmt.Errorf("line %d: unknown source %q", line, fields[2])
		}
	}
	return snmp, ttl, sc.Err()
}
