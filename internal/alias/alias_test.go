package alias

import (
	"context"
	"net/netip"
	"reflect"
	"testing"

	"arest/internal/mpls"
	"arest/internal/netsim"
	"arest/internal/probe"
)

func a(s string) netip.Addr { return netip.MustParseAddr(s) }

// mustResolve runs Resolve and fails the test on probe errors — none of
// the fault-free fixtures should produce any.
func mustResolve(t *testing.T, addrs []netip.Addr, p Prober, cfg Config) [][]netip.Addr {
	t.Helper()
	sets, err := Resolve(context.Background(), addrs, p, cfg)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	return sets
}

// meshNet builds a small AS whose routers each have several interfaces, so
// alias resolution has real work to do.
func meshNet(t *testing.T) (*netsim.Network, *probe.Tracer, []*netsim.Router) {
	t.Helper()
	n := netsim.New(17)
	prof := netsim.DefaultProfile(mpls.VendorCisco)
	gw := n.AddRouter(netsim.RouterConfig{Name: "gw", ASN: 65000, Vendor: mpls.VendorLinux,
		Profile: netsim.DefaultProfile(mpls.VendorLinux), Mode: netsim.ModeIP})
	var rs []*netsim.Router
	for i := 0; i < 4; i++ {
		rs = append(rs, n.AddRouter(netsim.RouterConfig{ASN: 100, Vendor: mpls.VendorCisco,
			Profile: prof, Mode: netsim.ModeIP}))
	}
	// Full mesh among the four, plus the gateway on r0.
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			n.Connect(rs[i].ID, rs[j].ID, 10)
		}
	}
	n.Connect(gw.ID, rs[0].ID, 10)
	vp := a("172.16.0.2")
	n.AddHost(vp, gw.ID)
	n.Compute()
	return n, probe.NewTracer(probe.NetsimConn{Net: n}, vp), rs
}

func TestResolveFindsTrueAliases(t *testing.T) {
	n, tc, rs := meshNet(t)
	var cands []netip.Addr
	truth := map[netip.Addr]netsim.RouterID{}
	for _, r := range rs {
		for _, ifaceAddr := range r.Interfaces() {
			cands = append(cands, ifaceAddr)
			truth[ifaceAddr] = r.ID
		}
	}
	sets := mustResolve(t, cands, tc, DefaultConfig())
	if len(sets) == 0 {
		t.Fatal("no alias sets found")
	}
	// Soundness: no set mixes interfaces of two routers.
	for _, set := range sets {
		owner := truth[set[0]]
		for _, addr := range set[1:] {
			if truth[addr] != owner {
				t.Errorf("set %v mixes routers %d and %d", set, owner, truth[addr])
			}
		}
	}
	// Completeness: each router's interfaces end up together. Count how
	// many of the 4 routers got a full set.
	full := 0
	for _, set := range sets {
		owner := truth[set[0]]
		r := n.Router(owner)
		if len(set) == len(r.Interfaces()) {
			full++
		}
	}
	if full < 3 {
		t.Errorf("only %d/4 routers fully aliased: %v", full, sets)
	}
}

func TestResolveRejectsNonAliases(t *testing.T) {
	_, tc, rs := meshNet(t)
	// One interface per router: nothing should be aliased.
	var cands []netip.Addr
	for _, r := range rs {
		cands = append(cands, r.Loopback)
	}
	sets := mustResolve(t, cands, tc, DefaultConfig())
	if len(sets) != 0 {
		t.Errorf("false aliases: %v", sets)
	}
}

func TestResolveSkipsUnresponsive(t *testing.T) {
	_, tc, rs := meshNet(t)
	cands := []netip.Addr{rs[0].Loopback, a("203.0.113.99")}
	sets := mustResolve(t, cands, tc, DefaultConfig())
	if len(sets) != 0 {
		t.Errorf("sets = %v", sets)
	}
}

// fakeProber serves scripted IP-ID sequences.
type fakeProber struct {
	ids  map[netip.Addr]*uint16
	step map[netip.Addr]uint16
	ttl  map[netip.Addr]uint8
}

func (f *fakeProber) SampleIPID(ctx context.Context, dst netip.Addr, seq uint32) (probe.IPIDSample, bool, error) {
	p, ok := f.ids[dst]
	if !ok {
		return probe.IPIDSample{}, false, nil
	}
	*p += f.step[dst]
	ttl := f.ttl[dst]
	if ttl == 0 {
		ttl = 250
	}
	return probe.IPIDSample{ID: *p, ReplyTTL: ttl}, true, nil
}

func TestSharedCounterWraparound(t *testing.T) {
	// Two addresses sharing a counter that wraps around 0xffff must still
	// be detected as aliases.
	ctr := uint16(0xfff0)
	f := &fakeProber{
		ids:  map[netip.Addr]*uint16{a("10.0.0.1"): &ctr, a("10.0.0.2"): &ctr},
		step: map[netip.Addr]uint16{a("10.0.0.1"): 5, a("10.0.0.2"): 5},
		ttl:  map[netip.Addr]uint8{},
	}
	sets := mustResolve(t, []netip.Addr{a("10.0.0.1"), a("10.0.0.2")}, f, DefaultConfig())
	if len(sets) != 1 || len(sets[0]) != 2 {
		t.Errorf("wraparound aliases missed: %v", sets)
	}
}

func TestAPPLEPruning(t *testing.T) {
	// Same shared counter but wildly different path lengths: APPLE prunes
	// the pair before the IP-ID test can (wrongly or rightly) fire.
	ctr := uint16(100)
	f := &fakeProber{
		ids:  map[netip.Addr]*uint16{a("10.0.0.1"): &ctr, a("10.0.0.2"): &ctr},
		step: map[netip.Addr]uint16{a("10.0.0.1"): 5, a("10.0.0.2"): 5},
		ttl:  map[netip.Addr]uint8{a("10.0.0.1"): 250, a("10.0.0.2"): 200},
	}
	sets := mustResolve(t, []netip.Addr{a("10.0.0.1"), a("10.0.0.2")}, f, DefaultConfig())
	if len(sets) != 0 {
		t.Errorf("APPLE pruning failed: %v", sets)
	}
}

func TestResolveParallelMatchesSequential(t *testing.T) {
	// The same candidate set resolved sequentially and with 8 workers must
	// yield identical alias sets: probes are pure functions of (addr, seq)
	// and the conflict-ordered schedule replays the sequential probe order
	// on every shared IP-ID counter. Run under -race this also exercises
	// concurrent netsim.Send on one shared Network.
	run := func(workers int) [][]netip.Addr {
		n, tc, rs := meshNet(t)
		var cands []netip.Addr
		for _, r := range rs {
			cands = append(cands, r.Interfaces()...)
		}
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.ConflictKey = func(a netip.Addr) (uint64, bool) {
			r, ok := n.RouterByAddr(a)
			if !ok {
				return 0, false
			}
			return uint64(r.ID), true
		}
		return mustResolve(t, cands, tc, cfg)
	}
	seq := run(1)
	parl := run(8)
	if len(seq) == 0 {
		t.Fatal("sequential run found no alias sets")
	}
	if !reflect.DeepEqual(seq, parl) {
		t.Errorf("parallel alias sets diverge:\nseq  = %v\npar  = %v", seq, parl)
	}
}

func TestVelocityBoundRejectsFastCounter(t *testing.T) {
	ctr1, ctr2 := uint16(0), uint16(30000)
	f := &fakeProber{
		ids:  map[netip.Addr]*uint16{a("10.0.0.1"): &ctr1, a("10.0.0.2"): &ctr2},
		step: map[netip.Addr]uint16{a("10.0.0.1"): 3, a("10.0.0.2"): 3},
		ttl:  map[netip.Addr]uint8{},
	}
	sets := mustResolve(t, []netip.Addr{a("10.0.0.1"), a("10.0.0.2")}, f, DefaultConfig())
	if len(sets) != 0 {
		t.Errorf("independent counters aliased: %v", sets)
	}
}
