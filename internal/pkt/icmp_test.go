package pkt

import (
	"bytes"
	"errors"
	"testing"

	"arest/internal/mpls"
)

// buildQuote builds a plausible original datagram: IPv4+UDP probe bytes.
func buildQuote(t *testing.T) []byte {
	t.Helper()
	src, dst := addr("10.0.0.1"), addr("192.0.2.9")
	u := &UDP{SrcPort: 33434, DstPort: 33435, Payload: []byte("probe-xyz")}
	ub, err := u.Marshal(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	ip := &IPv4{TTL: 1, Protocol: ProtoUDP, ID: 77, Src: src, Dst: dst, Payload: ub}
	b, err := ip.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestICMPEchoRoundTrip(t *testing.T) {
	in := &ICMP{Type: ICMPEchoRequest, ID: 0x1234, Seq: 7, Body: []byte("ping")}
	b, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalICMP(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != ICMPEchoRequest || out.ID != 0x1234 || out.Seq != 7 || string(out.Body) != "ping" {
		t.Errorf("round trip: %+v", out)
	}
}

func TestICMPTimeExceededPlain(t *testing.T) {
	quote := buildQuote(t)
	in := &ICMP{Type: ICMPTimeExceeded, Code: CodeTTLExceeded, Body: quote}
	b, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalICMP(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Body, quote) {
		t.Error("quoted datagram mangled")
	}
	if len(out.Extensions) != 0 {
		t.Errorf("unexpected extensions: %d", len(out.Extensions))
	}
	q, err := out.QuotedIPv4()
	if err != nil {
		t.Fatal(err)
	}
	if q.ID != 77 {
		t.Errorf("quoted IP ID = %d, want 77", q.ID)
	}
}

func TestICMPTimeExceededWithMPLSExtension(t *testing.T) {
	quote := buildQuote(t)
	stack := mpls.Stack{
		{Label: 16005, TC: 0, TTL: 253},
		{Label: 37000, TC: 0, TTL: 253},
	}
	obj, err := NewMPLSExtension(stack)
	if err != nil {
		t.Fatal(err)
	}
	in := &ICMP{Type: ICMPTimeExceeded, Body: quote, Extensions: []ExtensionObject{obj}}
	b, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// RFC 4884: original datagram padded to 128 bytes, length field 32 words.
	if b[5] != origDatagramPadLen/4 {
		t.Errorf("length field = %d words, want %d", b[5], origDatagramPadLen/4)
	}
	out, err := UnmarshalICMP(b)
	if err != nil {
		t.Fatal(err)
	}
	// The quoted datagram must come back unpadded.
	if !bytes.Equal(out.Body, quote) {
		t.Errorf("quote: got %d bytes, want %d", len(out.Body), len(quote))
	}
	got, ok := out.MPLSStack()
	if !ok {
		t.Fatal("MPLS stack not found in extensions")
	}
	if got.Depth() != 2 || got[0].Label != 16005 || got[1].Label != 37000 {
		t.Errorf("stack = %v", got)
	}
	if !got[1].S || got[0].S {
		t.Errorf("bottom-of-stack bits wrong: %v", got)
	}
	q, err := out.QuotedIPv4()
	if err != nil {
		t.Fatalf("quoted IPv4 unparseable after pad/trim: %v", err)
	}
	u, err := UnmarshalUDP(q.Src, q.Dst, q.Payload)
	if err != nil {
		t.Fatalf("quoted UDP: %v", err)
	}
	if u.DstPort != 33435 {
		t.Errorf("quoted dst port = %d", u.DstPort)
	}
}

func TestICMPChecksumValidation(t *testing.T) {
	in := &ICMP{Type: ICMPEchoReply, ID: 1, Seq: 1, Body: []byte("x")}
	b, _ := in.Marshal()
	b[4] ^= 0xaa
	if _, err := UnmarshalICMP(b); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestICMPExtensionChecksumValidation(t *testing.T) {
	quote := buildQuote(t)
	obj, _ := NewMPLSExtension(mpls.Stack{{Label: 16005, TTL: 1}})
	in := &ICMP{Type: ICMPTimeExceeded, Body: quote, Extensions: []ExtensionObject{obj}}
	b, _ := in.Marshal()
	// Corrupt one byte inside the extension payload and fix the outer ICMP
	// checksum so only the extension checksum catches it.
	extStart := icmpHeaderLen + origDatagramPadLen
	b[extStart+extHeaderLen+objectHeaderLen] ^= 0x01
	b[2], b[3] = 0, 0
	ck := Checksum(b)
	b[2], b[3] = byte(ck>>8), byte(ck)
	if _, err := UnmarshalICMP(b); !errors.Is(err, ErrBadExtension) {
		t.Errorf("err = %v, want ErrBadExtension", err)
	}
}

func TestICMPBadExtensionVersion(t *testing.T) {
	quote := buildQuote(t)
	obj, _ := NewMPLSExtension(mpls.Stack{{Label: 16005, TTL: 1}})
	in := &ICMP{Type: ICMPTimeExceeded, Body: quote, Extensions: []ExtensionObject{obj}}
	b, _ := in.Marshal()
	extStart := icmpHeaderLen + origDatagramPadLen
	b[extStart] = 1 << 4 // wrong version
	b[2], b[3] = 0, 0
	ck := Checksum(b)
	b[2], b[3] = byte(ck>>8), byte(ck)
	if _, err := UnmarshalICMP(b); !errors.Is(err, ErrBadExtension) {
		t.Errorf("err = %v, want ErrBadExtension", err)
	}
}

func TestICMPMultipleExtensionObjects(t *testing.T) {
	quote := buildQuote(t)
	obj1, _ := NewMPLSExtension(mpls.Stack{{Label: 16005, TTL: 2}})
	obj2 := ExtensionObject{Class: 3, CType: 1, Payload: []byte{1, 2, 3, 4}} // e.g. interface info
	in := &ICMP{Type: ICMPTimeExceeded, Body: quote, Extensions: []ExtensionObject{obj2, obj1}}
	b, _ := in.Marshal()
	out, err := UnmarshalICMP(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Extensions) != 2 {
		t.Fatalf("extensions = %d, want 2", len(out.Extensions))
	}
	if s, ok := out.MPLSStack(); !ok || s[0].Label != 16005 {
		t.Errorf("MPLS object not recovered: %v %v", s, ok)
	}
}

func TestICMPNoMPLSStack(t *testing.T) {
	m := &ICMP{Type: ICMPTimeExceeded, Body: buildQuote(t)}
	b, _ := m.Marshal()
	out, _ := UnmarshalICMP(b)
	if _, ok := out.MPLSStack(); ok {
		t.Error("MPLSStack found where none encoded")
	}
}

func TestICMPPortUnreachable(t *testing.T) {
	in := &ICMP{Type: ICMPDestUnreachable, Code: CodePortUnreachable, Body: buildQuote(t)}
	b, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalICMP(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Type != ICMPDestUnreachable || out.Code != CodePortUnreachable {
		t.Errorf("type/code = %d/%d", out.Type, out.Code)
	}
	if !out.IsError() {
		t.Error("IsError = false")
	}
}

func TestICMPQuotedIPv4OnEcho(t *testing.T) {
	m := &ICMP{Type: ICMPEchoRequest}
	if _, err := m.QuotedIPv4(); err == nil {
		t.Error("QuotedIPv4 on echo should fail")
	}
}

func TestICMPUnsupportedType(t *testing.T) {
	if _, err := (&ICMP{Type: 42}).Marshal(); err == nil {
		t.Error("Marshal of unsupported type succeeded")
	}
	b := []byte{42, 0, 0, 0, 0, 0, 0, 0}
	ck := Checksum(b)
	b[2], b[3] = byte(ck>>8), byte(ck)
	if _, err := UnmarshalICMP(b); err == nil {
		t.Error("Unmarshal of unsupported type succeeded")
	}
}

func TestICMPShort(t *testing.T) {
	if _, err := UnmarshalICMP(make([]byte, 7)); !errors.Is(err, ErrShortPacket) {
		t.Errorf("err = %v", err)
	}
}

func TestICMPTruncatedOriginalDatagram(t *testing.T) {
	quote := buildQuote(t)
	obj, _ := NewMPLSExtension(mpls.Stack{{Label: 1600, TTL: 3}})
	in := &ICMP{Type: ICMPTimeExceeded, Body: quote, Extensions: []ExtensionObject{obj}}
	b, _ := in.Marshal()
	cut := b[:icmpHeaderLen+64] // cut inside the padded original datagram
	ck := Checksum(cut[:2])
	_ = ck
	cut[2], cut[3] = 0, 0
	c := Checksum(cut)
	cut[2], cut[3] = byte(c>>8), byte(c)
	if _, err := UnmarshalICMP(cut); !errors.Is(err, ErrBadExtension) {
		t.Errorf("err = %v, want ErrBadExtension", err)
	}
}

func TestICMPFullExchangeThroughIPv4(t *testing.T) {
	// End-to-end: an LSR builds a time-exceeded with a quoted stack, wraps
	// it in IPv4, and a prober on the other side digs the stack back out.
	quote := buildQuote(t)
	stack := mpls.Stack{{Label: 24017, TTL: 254}, {Label: 16008, TTL: 254}}
	obj, _ := NewMPLSExtension(stack)
	icmp := &ICMP{Type: ICMPTimeExceeded, Body: quote, Extensions: []ExtensionObject{obj}}
	ib, err := icmp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	ip := &IPv4{TTL: 255, Protocol: ProtoICMP, Src: addr("10.9.9.9"), Dst: addr("10.0.0.1"), Payload: ib}
	wire, err := ip.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	rxIP, err := UnmarshalIPv4(wire)
	if err != nil {
		t.Fatal(err)
	}
	if rxIP.Protocol != ProtoICMP {
		t.Fatalf("proto = %d", rxIP.Protocol)
	}
	rxICMP, err := UnmarshalICMP(rxIP.Payload)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := rxICMP.MPLSStack()
	if !ok || !got.Equal(mpls.Stack{{Label: 24017, TTL: 254}, {Label: 16008, TTL: 254, S: true}}) {
		t.Errorf("stack = %v ok=%v", got, ok)
	}
}
