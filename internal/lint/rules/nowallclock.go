package rules

import (
	"go/ast"
	"go/types"

	"arest/internal/lint"
)

// wallClockFns are the package time functions that read the process
// clock or construct timers from it. Any reference to one of these —
// a call or a function value — inside a determinism-contract package is
// a finding: probe outcomes must be pure functions of what is probed,
// never of when (DESIGN.md §7), and timing that operators do want is
// measured through the injectable obs clock (§8), which contract code
// receives already constructed.
var wallClockFns = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// NoWallClock builds the nowallclock analyzer over the given contract
// package import paths.
func NoWallClock(contract []string) *lint.Analyzer {
	set := make(map[string]bool, len(contract))
	for _, p := range contract {
		set[p] = true
	}
	return &lint.Analyzer{
		Name: "nowallclock",
		Doc:  "forbid wall-clock reads (time.Now etc.) in determinism-contract packages",
		Run: func(pass *lint.Pass) error {
			if !set[pass.Pkg.Path()] {
				return nil
			}
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					fn, ok := pass.Info.Uses[id].(*types.Func)
					if !ok || fn.Pkg() == nil {
						return true
					}
					if fn.Pkg().Path() == "time" && wallClockFns[fn.Name()] {
						pass.Report(id.Pos(),
							"time.%s reads the wall clock: %s is a determinism-contract package (DESIGN.md §7); inject a clock through obs instead",
							fn.Name(), pass.Pkg.Path())
					}
					return true
				})
			}
			return nil
		},
	}
}
