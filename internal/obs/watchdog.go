package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Watchdog detects stalled pipeline work from heartbeat recency. It is the
// wall-clock half of the campaign's deadline story (DESIGN.md §14): budgets
// inside the determinism contract are probe-count based and replayable,
// while the watchdog lives here in obs — outside the contract, on the same
// injectable clock as Spans — and turns "this AS has made no progress for
// StallAfter" into a cancellation instead of a hung campaign.
//
// Each supervised unit of work registers a Heartbeat and calls Beat as it
// makes progress (one beat per trace job, one per analysis batch). Scan
// compares every live heartbeat against the clock and fires the unit's
// onStall callback exactly once when it goes quiet for longer than
// StallAfter. Scan is normally driven by the ticker goroutine Start spawns,
// but is exported on its own so tests drive stall detection with a fake
// clock and zero sleeps.
//
// Counters (registered as watchdog.heartbeats / watchdog.stalls): the
// heartbeat count is one per unit of pipeline progress and therefore
// deterministic across worker counts; the stall count is deterministic
// given a deterministic scan schedule (tests), and wall-clock dependent in
// production by design.
//
// Like every obs instrument, a nil *Watchdog and a nil *Heartbeat are
// valid no-ops, so supervised code paths beat unconditionally.
type Watchdog struct {
	reg        *Registry
	clock      func() time.Time
	stallAfter time.Duration

	mu    sync.Mutex
	tasks map[*Heartbeat]struct{}
}

// Heartbeat is one supervised unit's progress pulse, created by
// Watchdog.Register and retired by Done.
type Heartbeat struct {
	w       *Watchdog
	name    string
	onStall func()
	last    atomic.Int64 // clock reading at the latest Beat, unix nanos
	stalled atomic.Bool
}

// NewWatchdog returns a watchdog reading the registry's clock (the real
// clock when reg is nil or was built by New without SetClock). stallAfter
// <= 0 disables stall detection: heartbeats are still counted but Scan
// never fires. Construct the watchdog after any SetClock call on reg.
func NewWatchdog(reg *Registry, stallAfter time.Duration) *Watchdog {
	clock := time.Now
	if reg != nil && reg.clock != nil {
		clock = reg.clock
	}
	return &Watchdog{
		reg:        reg,
		clock:      clock,
		stallAfter: stallAfter,
		tasks:      make(map[*Heartbeat]struct{}),
	}
}

// Register adds a supervised unit and returns its heartbeat, already
// beaten once (registration is progress). onStall runs at most once, from
// whichever goroutine calls the Scan that detects the stall; it must be
// safe to call concurrently with the unit's own work — cancelling a
// context is the intended shape. Nil-safe: a nil watchdog returns a nil
// (no-op) heartbeat.
func (w *Watchdog) Register(name string, onStall func()) *Heartbeat {
	if w == nil {
		return nil
	}
	h := &Heartbeat{w: w, name: name, onStall: onStall}
	h.last.Store(w.clock().UnixNano())
	w.mu.Lock()
	w.tasks[h] = struct{}{}
	w.mu.Unlock()
	return h
}

// Beat records progress: it refreshes the stall deadline and increments
// watchdog.heartbeats. No-op on nil.
func (h *Heartbeat) Beat() {
	if h == nil {
		return
	}
	h.last.Store(h.w.clock().UnixNano())
	h.w.reg.Counter("watchdog", "heartbeats").Inc()
}

// Done retires the heartbeat: the unit finished (or was quarantined) and
// must no longer be scanned. No-op on nil.
func (h *Heartbeat) Done() {
	if h == nil {
		return
	}
	h.w.mu.Lock()
	delete(h.w.tasks, h)
	h.w.mu.Unlock()
}

// Scan checks every live heartbeat against the clock and fires onStall for
// each one quiet for longer than StallAfter, incrementing watchdog.stalls
// per newly stalled unit. Repeated scans never re-fire a stalled unit.
// Returns the number of stalls detected by this scan (0 on nil watchdog or
// disabled stall detection).
func (w *Watchdog) Scan() int {
	if w == nil || w.stallAfter <= 0 {
		return 0
	}
	now := w.clock().UnixNano()
	w.mu.Lock()
	var quiet []*Heartbeat
	for h := range w.tasks {
		if !h.stalled.Load() && now-h.last.Load() > w.stallAfter.Nanoseconds() {
			quiet = append(quiet, h)
		}
	}
	w.mu.Unlock()
	// Fire outside the lock (onStall may call back into Done) and in name
	// order so multi-stall scans are reproducible.
	sort.Slice(quiet, func(i, j int) bool { return quiet[i].name < quiet[j].name })
	stalls := 0
	for _, h := range quiet {
		if h.stalled.CompareAndSwap(false, true) {
			stalls++
			w.reg.Counter("watchdog", "stalls").Inc()
			if h.onStall != nil {
				h.onStall()
			}
		}
	}
	return stalls
}

// Start spawns the scanning goroutine on a real ticker and returns its
// stop function. interval <= 0 defaults to a quarter of StallAfter, so a
// stall is detected within ~1.25x the configured quiet period. Nil-safe:
// a nil or disabled watchdog returns a no-op stop.
func (w *Watchdog) Start(interval time.Duration) (stop func()) {
	if w == nil || w.stallAfter <= 0 {
		return func() {}
	}
	if interval <= 0 {
		interval = w.stallAfter / 4
	}
	if interval <= 0 {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	quit := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-quit:
				return
			case <-tick.C:
				w.Scan()
			}
		}
	}()
	return func() {
		tick.Stop()
		close(quit)
		wg.Wait()
	}
}
