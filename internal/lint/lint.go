// Package lint is a small stdlib-only static-analysis framework that
// machine-checks the repository's determinism contract (DESIGN.md §7/§8).
//
// The design follows the shape of golang.org/x/tools/go/analysis — an
// Analyzer is a named check with a Run function over a type-checked
// package — but is rebuilt on go/parser + go/types + go/importer alone so
// the module keeps its stdlib-only rule. The pieces:
//
//   - Analyzer / Pass / Diagnostic: the diagnostic engine (this file).
//   - Loader (load.go): enumerates and type-checks every package under the
//     module root, resolving intra-module imports from source and stdlib
//     imports from compiler export data.
//   - //arest:allow directives (directive.go): per-file suppression, each
//     carrying a mandatory written justification.
//   - // want harness (want.go): testdata-driven analyzer tests.
//
// Repo-specific analyzers live in internal/lint/rules; cmd/arestlint is
// the CLI that runs them over ./... and fails the build on any finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. Run inspects a single type-checked package
// through the Pass and reports findings via Pass.Report; a non-nil error
// aborts the whole lint run (reserved for internal failures, not findings).
type Analyzer struct {
	// Name identifies the analyzer in output and in //arest:allow
	// directives. Lowercase, no spaces.
	Name string
	// Doc is a one-line description shown by arestlint -list.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Report records a finding at pos. Suppression (//arest:allow) is
	// applied by the Runner, not by analyzers.
	Report func(pos token.Pos, format string, args ...any)
}

// Diagnostic is one finding, positioned and attributed to an analyzer.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string

	// SuppressedBy is empty for a live finding. When the Runner ran with
	// IncludeSuppressed, findings silenced by an //arest:allow carry the
	// directive's position and reason here ("file:line (reason)") so
	// machine consumers (-json) can audit what the suppressions cover.
	SuppressedBy string
}

func (d Diagnostic) String() string {
	if d.SuppressedBy != "" {
		return fmt.Sprintf("%s: [%s] %s (suppressed by %s)", d.Pos, d.Analyzer, d.Message, d.SuppressedBy)
	}
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Runner applies a fixed set of analyzers to packages, folds in the
// //arest:allow suppression directives, and returns ordered diagnostics.
type Runner struct {
	Analyzers []*Analyzer

	// KeepUnusedAllows disables the "unused //arest:allow" check. The
	// default (false) reports an allow that suppressed nothing, so stale
	// justifications cannot linger after the code they excused is gone.
	KeepUnusedAllows bool

	// IncludeSuppressed keeps findings silenced by //arest:allow in the
	// result, with Diagnostic.SuppressedBy set to the directive's
	// position and reason. They still mark the directive used and do not
	// count toward the CLI's exit status.
	IncludeSuppressed bool
}

// known returns the set of analyzer names a directive may reference.
func (r *Runner) known() map[string]bool {
	m := make(map[string]bool, len(r.Analyzers))
	for _, a := range r.Analyzers {
		m[a.Name] = true
	}
	return m
}

// Run executes every analyzer over every package and returns the surviving
// diagnostics sorted by position. Malformed directives (missing reason,
// unknown analyzer) and — unless KeepUnusedAllows — directives that
// suppressed nothing are themselves reported as "arestlint" diagnostics.
func (r *Runner) Run(pkgs []*Package) ([]Diagnostic, error) {
	known := r.known()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows, bad := collectAllows(pkg.Fset, pkg.Files, known)
		diags = append(diags, bad...)
		// Annotation directives (//arest:mergeable, hotpath, coldpath) are
		// validated here, like allows, so a malformed annotation fails the
		// build even when no analyzer consumes it.
		_, hbad := CollectHotPaths(pkg.Fset, pkg.Files)
		diags = append(diags, hbad...)
		_, mbad := Mergeables(pkg.Fset, pkg.Files)
		diags = append(diags, mbad...)
		for _, a := range r.Analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.Report = func(pos token.Pos, format string, args ...any) {
				p := pkg.Fset.Position(pos)
				if al := allows.match(a.Name, p.Filename); al != nil {
					al.used = true
					if r.IncludeSuppressed {
						diags = append(diags, Diagnostic{
							Analyzer:     a.Name,
							Pos:          p,
							Message:      fmt.Sprintf(format, args...),
							SuppressedBy: al.summary(),
						})
					}
					return
				}
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Pos:      p,
					Message:  fmt.Sprintf(format, args...),
				})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		if !r.KeepUnusedAllows {
			for _, al := range allows {
				if !al.used {
					diags = append(diags, Diagnostic{
						Analyzer: DirectiveAnalyzerName,
						Pos:      al.pos,
						Message: fmt.Sprintf(
							"unused //arest:allow %s: no %s finding in this file; delete the directive",
							al.analyzer, al.analyzer),
					})
				}
			}
		}
	}
	SortDiagnostics(diags)
	return dedupe(diags), nil
}

// dedupe drops exact duplicates from sorted diagnostics (nested map
// ranges, for instance, can surface one sink twice).
func dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// SortDiagnostics orders findings by file, line, column, analyzer, message
// so output is stable across runs and map-free by construction.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// ObjectOf resolves an identifier through Uses then Defs; nil when the
// identifier is not resolved (e.g. the blank identifier).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.Uses[id]; o != nil {
		return o
	}
	return p.Info.Defs[id]
}

// CalleeIn resolves the called function of a call expression to a package
// path and function name, handling both qualified idents (pkg.Fn) and
// plain idents. Methods resolve to their receiver's package. ok is false
// for builtins, function-typed variables, and type conversions.
func (p *Pass) CalleeIn(call *ast.CallExpr) (pkgPath, name string, ok bool) {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", "", false
	}
	obj := p.ObjectOf(id)
	fn, isFn := obj.(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}
