package probe

import (
	"context"
	"fmt"
	"net/netip"
)

// opaqueTTLFloor is the quoted-LSE TTL above which a label quote can only
// come from a pipe-model tunnel (LSE TTL initialized to 255 at the ingress
// rather than copied from the IP TTL).
const opaqueTTLFloor = 200

// reveal implements TNT-style revelation: when the return-path length
// (RTLA) jumps by more than one between consecutive visible hops, or an
// opaque LSE quote is present, hidden hops are suspected in between. TNT
// then traces directly toward the downstream hop's interface address (DPR):
// interface prefixes carry no LDP/SR FEC, so those probes are forwarded as
// plain IP and expose the tunnel interior — without LSEs, exactly as the
// paper notes for invisible tunnels.
//
// Revealed hops are renumbered into the gap they fill (a.TTL+1, a.TTL+2, …)
// and every hop after the splice is shifted by the revealed count, so hop
// TTLs stay strictly increasing and consistent with hop indexes across the
// augmented trace.
//
// A failed auxiliary trace does not fail the main one: the failure is
// recorded in tr.RevealErrs (and counted) and revelation moves on, so a
// trace with a broken DPR path still carries its measured hops — merely
// flagged that hidden content may remain unrevealed. Cancellation is the
// exception: once ctx is done, reveal stops and returns the cause, and the
// caller discards the whole trace — a partially revealed trace must never
// be recorded as if it were complete.
func (t *Tracer) reveal(ctx context.Context, tr *Trace) error {
	visible := make(map[netip.Addr]bool)
	for i := range tr.Hops {
		if tr.Hops[i].Responded() {
			visible[tr.Hops[i].Addr] = true
		}
	}
	// Walk hop pairs; splice in revealed hops as we find them.
	for i := 0; i < len(tr.Hops)-1; i++ {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		a, b := &tr.Hops[i], &tr.Hops[i+1]
		if !a.Responded() || !b.Responded() || b.Revealed {
			continue
		}
		suspected := 0
		if jump := returnPathLen(b.ReplyTTL) - returnPathLen(a.ReplyTTL); jump > 1 {
			suspected = jump - 1
		}
		if b.HasStack() && b.Stack[0].TTL > opaqueTTLFloor {
			if n := 255 - int(b.Stack[0].TTL); n > suspected {
				suspected = n
			}
		}
		if suspected == 0 {
			continue
		}
		hidden, err := t.directPathRevelation(ctx, b.Addr, visible)
		if err != nil && ctx.Err() != nil {
			// The aux trace died because the campaign is shutting down, not
			// because the DPR path is broken; abort rather than record it.
			return context.Cause(ctx)
		}
		t.Metrics.countReveal(true, len(hidden))
		if err != nil {
			t.Metrics.countRevealError()
			tr.RevealErrs = append(tr.RevealErrs, fmt.Sprintf("dpr %s: %v", b.Addr, err))
			continue
		}
		if len(hidden) == 0 {
			continue
		}
		for j := range hidden {
			hidden[j].Revealed = true
			hidden[j].TTL = a.TTL + 1 + j // fills the gap between a and b
			visible[hidden[j].Addr] = true
		}
		spliced := make([]Hop, 0, len(tr.Hops)+len(hidden))
		spliced = append(spliced, tr.Hops[:i+1]...)
		spliced = append(spliced, hidden...)
		spliced = append(spliced, tr.Hops[i+1:]...)
		// Shift the tail past the splice so TTLs stay strictly increasing.
		for k := i + 1 + len(hidden); k < len(spliced); k++ {
			spliced[k].TTL += len(hidden)
		}
		tr.Hops = spliced
		i += len(hidden) // continue after the spliced region
	}
	return nil
}

// directPathRevelation traces toward the trigger address and returns the
// responding hops that precede it and are not already visible in the main
// trace: the hidden tunnel interior. A transport failure of the auxiliary
// trace is returned as an error — distinct from "the path holds no new
// hops" (nil, nil) — so the caller can record that revelation was disabled
// rather than silently classifying on an unrevealed trace.
func (t *Tracer) directPathRevelation(ctx context.Context, trigger netip.Addr, visible map[netip.Addr]bool) ([]Hop, error) {
	// The auxiliary tracer deliberately keeps Retries at zero, as the
	// original DPR implementation did: giving aux traces a retry budget
	// would change fault-free probe sequences (each retry draws a fresh
	// rate-limiter coin) and with them every pinned campaign result.
	// Transport errors in the aux sweep therefore surface immediately.
	aux := &Tracer{Conn: t.Conn, VP: t.VP, MaxTTL: t.MaxTTL, MaxGaps: t.MaxGaps,
		BasePort: t.BasePort, Reveal: false, Metrics: t.Metrics}
	tr, err := aux.Trace(ctx, trigger, 0)
	if err != nil {
		return nil, err
	}
	if tr.Failed() {
		return nil, fmt.Errorf("aux trace: %s", tr.Err)
	}
	if !tr.Reached() {
		return nil, nil
	}
	// Locate the trigger in the auxiliary trace, then collect the
	// contiguous run of new hops immediately before it.
	end := -1
	for i := range tr.Hops {
		if tr.Hops[i].Addr == trigger {
			end = i
			break
		}
	}
	if end <= 0 {
		return nil, nil
	}
	start := end
	for start > 0 && tr.Hops[start-1].Responded() && !visible[tr.Hops[start-1].Addr] {
		start--
	}
	if start == end {
		return nil, nil
	}
	out := make([]Hop, end-start)
	copy(out, tr.Hops[start:end])
	return out, nil
}
