package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(4) != 4 {
		t.Error("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("defaulted worker count must be >= 1")
	}
}

func TestForEachCoversAllIndexes(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		hits := make([]int32, n)
		if err := ForEach(ctx, workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) }); err != nil {
			t.Fatalf("workers=%d: ForEach: %v", workers, err)
		}
		for i := range hits {
			if h := atomic.LoadInt32(&hits[i]); h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
	if err := ForEach(ctx, 4, 0, func(int) { t.Error("fn called for n=0") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
}

func TestForEachCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		// Cancel from inside a task: no further index may be claimed after
		// in-flight tasks drain, and the cancellation cause must surface.
		ctx, cancel := context.WithCancelCause(context.Background())
		cause := errors.New("stop here")
		n := 1000
		var ran atomic.Int32
		err := ForEach(ctx, workers, n, func(i int) {
			if ran.Add(1) == 5 {
				cancel(cause)
			}
		})
		if !errors.Is(err, cause) {
			t.Fatalf("workers=%d: err = %v, want cause %v", workers, err, cause)
		}
		// In-flight tasks finish, so up to `workers` extra calls may land
		// after the cancel — but nowhere near the full index space.
		if got := ran.Load(); got >= int32(n) {
			t.Fatalf("workers=%d: ran %d of %d tasks after cancel", workers, got, n)
		}
		cancel(nil)
	}
}

func TestForEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		err := ForEach(ctx, workers, 10, func(int) { t.Error("fn ran under a dead context") })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestConflictOrderedSerializesPerKey(t *testing.T) {
	// 60 tasks over two disjoint key families, two keys per task: same-key
	// tasks must run in index order and never concurrently.
	n := 60
	keysOf := func(i int) []uint64 { return []uint64{uint64(i % 6), uint64(6 + (i*5)%7)} }
	var mu sync.Mutex
	perKey := make(map[uint64][]int)
	inKey := make(map[uint64]bool)
	err := ConflictOrdered(context.Background(), 8, n, keysOf, func(i int) {
		mu.Lock()
		for _, k := range keysOf(i) {
			if inKey[k] {
				t.Errorf("task %d entered busy key %d", i, k)
			}
			inKey[k] = true
		}
		mu.Unlock()
		mu.Lock()
		for _, k := range keysOf(i) {
			perKey[k] = append(perKey[k], i)
			inKey[k] = false
		}
		mu.Unlock()
	})
	if err != nil {
		t.Fatalf("ConflictOrdered: %v", err)
	}
	for k, order := range perKey {
		for i := 1; i < len(order); i++ {
			if order[i] <= order[i-1] {
				t.Errorf("key %d ran out of order: %v", k, order)
			}
		}
	}
}

func TestConflictOrderedRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		n := 200
		hits := make([]int32, n)
		// All tasks share key 0 plus a private key: fully serialized.
		err := ConflictOrdered(context.Background(), workers, n, func(i int) []uint64 {
			return []uint64{0, uint64(1 + i)}
		}, func(i int) { atomic.AddInt32(&hits[i], 1) })
		if err != nil {
			t.Fatalf("workers=%d: ConflictOrdered: %v", workers, err)
		}
		for i := range hits {
			if h := atomic.LoadInt32(&hits[i]); h != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestConflictOrderedSharedKeyPreservesTotalOrder(t *testing.T) {
	// When every task shares one key the parallel schedule must equal the
	// sequential one exactly.
	n := 50
	var order []int
	err := ConflictOrdered(context.Background(), 8, n, func(i int) []uint64 { return []uint64{42} },
		func(i int) { order = append(order, i) })
	if err != nil {
		t.Fatalf("ConflictOrdered: %v", err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d; schedule %v", i, got, order)
		}
	}
}

func TestConflictOrderedDuplicateAndEmptyKeys(t *testing.T) {
	n := 20
	hits := make([]int32, n)
	err := ConflictOrdered(context.Background(), 4, n, func(i int) []uint64 {
		if i%3 == 0 {
			return nil // keyless: unconstrained
		}
		return []uint64{7, 7} // duplicate key must not self-deadlock
	}, func(i int) { atomic.AddInt32(&hits[i], 1) })
	if err != nil {
		t.Fatalf("ConflictOrdered: %v", err)
	}
	for i := range hits {
		if h := atomic.LoadInt32(&hits[i]); h != 1 {
			t.Fatalf("task %d ran %d times", i, h)
		}
	}
}

func TestConflictOrderedCancelled(t *testing.T) {
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancelCause(context.Background())
		cause := errors.New("watchdog stall")
		n := 500
		var ran atomic.Int32
		// Fully serialized schedule so the cancel point is well inside the run.
		err := ConflictOrdered(ctx, workers, n, func(i int) []uint64 { return []uint64{1} },
			func(i int) {
				if ran.Add(1) == 3 {
					cancel(cause)
				}
			})
		if !errors.Is(err, cause) {
			t.Fatalf("workers=%d: err = %v, want cause %v", workers, err, cause)
		}
		if got := ran.Load(); got >= int32(n) {
			t.Fatalf("workers=%d: ran %d of %d tasks after cancel", workers, got, n)
		}
		cancel(nil)
	}
}
