package exp

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"arest/internal/archive"
	"arest/internal/asgen"
	"arest/internal/par"
)

// ShardPath names the archive shard for one catalogue record inside a
// snapshot directory.
func ShardPath(dir string, rec asgen.Record) string {
	return filepath.Join(dir, fmt.Sprintf("as-%03d.arest", rec.ID))
}

// ShardStatus reports what RunSharded did for one AS.
type ShardStatus int

const (
	// ShardMeasured: no usable shard existed; the AS was measured and a
	// fresh archive written.
	ShardMeasured ShardStatus = iota
	// ShardResumed: a complete shard existed and was replayed without
	// re-measuring.
	ShardResumed
	// ShardFailed: the AS was quarantined (see Campaign.Failed). Its shard
	// may still exist on disk — a measurement over the trace-failure
	// budget is persisted before the budget verdict, so the degraded
	// evidence survives and a resume re-derives the same failure.
	ShardFailed
	// ShardInterrupted: the campaign was cancelled before this AS's shard
	// was complete. Nothing (or only a fully-written shard from a previous
	// run) is on disk for it; a resumed campaign picks it up as if it had
	// never been attempted.
	ShardInterrupted
)

func (s ShardStatus) String() string {
	switch s {
	case ShardMeasured:
		return "measured"
	case ShardResumed:
		return "resumed"
	case ShardFailed:
		return "failed"
	case ShardInterrupted:
		return "interrupted"
	default:
		return "?"
	}
}

// RunSharded executes the campaign in snapshot/resume mode: each AS's
// measurement is persisted as a per-AS archive shard under dir, and a
// restart skips every AS whose shard is already complete — an interrupted
// campaign resumes where it stopped and still produces output identical
// to an uninterrupted run, because analysis is always a replay of the
// shard on disk (never of in-memory measurement state).
//
// A shard that is missing, truncated (interrupted writer), or corrupt is
// re-measured and atomically rewritten; statuses (parallel to the kept
// catalogue records, successful or not) say which path each AS took.
//
// Failures are contained per AS, as in Run: an errored AS gets status
// ShardFailed and lands in Campaign.Failed, the rest of the campaign
// completes, and the error return is reserved for campaign-level failures
// (the snapshot directory itself).
//
// Cancelling ctx interrupts the campaign and upholds the resume invariant:
// shards are written atomically only after a complete measurement, so a
// cancelled run leaves exactly the complete shards on disk — bit-identical
// to an uninterrupted run's — and nothing else. Interrupted ASes get
// status ShardInterrupted (not Failed); a resumed RunSharded over the same
// dir completes them and yields a Campaign deep-equal to one that was
// never interrupted.
func RunSharded(ctx context.Context, records []asgen.Record, cfg Config, dir string) (*Campaign, []ShardStatus, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("snapshot dir: %w", err)
	}
	kept := keptRecords(records)
	results := make([]*ASResult, len(kept))
	statuses := make([]ShardStatus, len(kept))
	errs := make([]error, len(kept))
	wd, stopWD := cfg.startWatchdog()
	defer stopWD()
	fanErr := par.ForEach(ctx, cfg.workers(), len(kept), func(i int) {
		asCtx, asCfg, finish := cfg.supervised(ctx, wd, kept[i])
		defer finish()
		results[i], statuses[i], errs[i] = runShard(asCtx, kept[i], asCfg, dir)
	})

	c := &Campaign{Cfg: cfg}
	interrupted := 0
	for i, rec := range kept {
		switch {
		case errs[i] == nil && results[i] != nil:
			c.ASes = append(c.ASes, results[i])
		case errs[i] == nil:
			statuses[i] = ShardInterrupted
			interrupted++
		case IsInterrupt(errs[i]) && ctx.Err() != nil:
			statuses[i] = ShardInterrupted
			interrupted++
		default:
			statuses[i] = ShardFailed
			c.Failed = append(c.Failed, ASFailure{Record: rec, Stage: FailureStage(errs[i]), Err: errs[i]})
		}
	}
	countASFailures(cfg.Metrics, len(c.Failed))
	if fanErr != nil || interrupted > 0 {
		countInterrupt(cfg.Metrics, interrupted)
		if fanErr == nil {
			fanErr = context.Cause(ctx)
		}
		return c, statuses, fanErr
	}
	return c, statuses, nil
}

// runShard loads-or-measures one AS's shard and analyzes it. Errors carry
// their pipeline stage; the trace-failure budget is applied to the shard
// as read from disk on both paths, so a degraded shard fails (or passes)
// identically whether it was just measured or resumed from an earlier run.
//
// The cancellation invariant lives here: the shard write is atomic
// (archive.WriteFile's temp+rename) and happens only after MeasureAS
// returned a complete measurement, so an interrupt can never leave a
// partial shard that a resume would mistake for evidence.
func runShard(ctx context.Context, rec asgen.Record, cfg Config, dir string) (*ASResult, ShardStatus, error) {
	path := ShardPath(dir, rec)
	res, err := DetectStreamFile(ctx, path, cfg)
	switch {
	case err == nil:
		return res, ShardResumed, nil
	case errors.Is(err, fs.ErrNotExist),
		errors.Is(err, archive.ErrTruncated),
		errors.Is(err, archive.ErrCorrupt),
		errors.Is(err, archive.ErrBadMagic):
		// Fall through to re-measure: the shard never finished (or was
		// damaged); WriteFile's temp+rename keeps this crash-safe too.
	default:
		return nil, 0, shardErr(path, err)
	}

	data, err := MeasureAS(ctx, rec, cfg)
	if err != nil {
		return nil, 0, stageErr(StageMeasure, err)
	}
	// Persist the shard before the budget verdict: a measurement over
	// budget is still evidence, and writing it first means a resume reads
	// the same degraded data and re-derives the same quarantine decision
	// instead of silently re-measuring. The budget itself is applied by the
	// streaming replay below, the moment the degradation record arrives.
	if err := archive.WriteFile(path, data); err != nil {
		return nil, 0, stageErr(StageArchive, fmt.Errorf("shard %s: %w", path, err))
	}
	// Analyze the written shard, not the in-memory measurement: every
	// campaign output then provably flows through the archive codec — and
	// through the same bounded-memory fold a resume would use.
	res, err = DetectStreamFile(ctx, path, cfg)
	if err != nil {
		return nil, 0, shardErr(path, err)
	}
	return res, ShardMeasured, nil
}

// shardErr attributes a streaming-replay error: a budget verdict (trace
// failures or plan size) is already a StageMeasure policy decision and
// passes through untouched (so resumed and just-measured shards fail with
// identical errors), and an interrupt passes through so cancellation never
// masquerades as a damaged shard; anything else is an archive-stage
// failure tagged with the shard path.
func shardErr(path string, err error) error {
	var tbe *TraceBudgetError
	var abe *ASBudgetError
	if errors.As(err, &tbe) || errors.As(err, &abe) || IsInterrupt(err) {
		return err
	}
	return stageErr(StageArchive, fmt.Errorf("shard %s: %w", path, err))
}
