package rules

import (
	"go/ast"
	"go/token"
	"go/types"

	"arest/internal/lint"
)

// ErrAuditPackages are the measurement packages whose discarded errors the
// noerrdrop analyzer audits: the two layers that talk to a probe.Conn,
// where a swallowed transport error silently becomes a wrong measurement
// (an errored probe recorded as an unresponsive router). Swallowing was
// exactly the bug class behind the fail-soft campaign work; this analyzer
// keeps it from growing back.
var ErrAuditPackages = []string{
	"arest/internal/probe",
	"arest/internal/alias",
}

// NoErrDrop builds the noerrdrop analyzer: within the audited packages, a
// call whose result set contains an error must not be discarded. Two
// findings:
//
//   - a call statement (including go/defer) whose callee returns an error
//     that nothing consumes;
//   - an assignment that lands an error result in the blank identifier.
//
// Audited exceptions carry a file-level //arest:allow noerrdrop directive
// with a written reason (e.g. fmt.Fprintf to a strings.Builder, which is
// documented never to fail).
func NoErrDrop(packages []string) *lint.Analyzer {
	audited := map[string]bool{}
	for _, p := range packages {
		audited[p] = true
	}
	return &lint.Analyzer{
		Name: "noerrdrop",
		Doc:  "forbid discarded error returns in the probe and alias measurement layers",
		Run: func(pass *lint.Pass) error {
			if !audited[pass.Pkg.Path()] {
				return nil
			}
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.ExprStmt:
						reportDroppedCall(pass, n.X)
					case *ast.GoStmt:
						reportDroppedCall(pass, n.Call)
					case *ast.DeferStmt:
						reportDroppedCall(pass, n.Call)
					case *ast.AssignStmt:
						reportBlankErr(pass, n)
					}
					return true
				})
			}
			return nil
		},
	}
}

// reportDroppedCall flags expr when it is a call whose results include an
// error, used as a bare statement: every result, the error among them, is
// discarded.
func reportDroppedCall(pass *lint.Pass, expr ast.Expr) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return
	}
	if errs := errResultCount(pass, call); errs > 0 {
		pass.Report(call.Pos(),
			"result of %s contains an error that is silently discarded; handle it, record it distinctly, or add a file-level //arest:allow noerrdrop with the audit reason",
			calleeLabel(call))
	}
}

// reportBlankErr flags assignments that discard an error result into the
// blank identifier, e.g. `v, _ := f()` where f's second result is an
// error. Only call results are audited: `_ = err` on an existing value is
// an explicit, visible decision, while `_` against a fresh call result is
// the silent variant this analyzer exists for.
func reportBlankErr(pass *lint.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Tuple form: v, _ := f().
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		components := resultTypes(callType(pass, call))
		if len(components) != len(as.Lhs) {
			return
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && isErrorType(components[i]) {
				reportBlank(pass, lhs.Pos(), call)
			}
		}
		return
	}
	// n:n form: _, _ = v, f().
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		if !isBlank(as.Lhs[i]) {
			continue
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if c := resultTypes(callType(pass, call)); len(c) == 1 && isErrorType(c[0]) {
			reportBlank(pass, as.Lhs[i].Pos(), call)
		}
	}
}

func reportBlank(pass *lint.Pass, pos token.Pos, call *ast.CallExpr) {
	pass.Report(pos,
		"error result of %s assigned to _; handle it, record it distinctly, or add a file-level //arest:allow noerrdrop with the audit reason",
		calleeLabel(call))
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callType returns the call expression's type, nil when untracked.
func callType(pass *lint.Pass, call *ast.CallExpr) types.Type {
	if tv, ok := pass.Info.Types[call]; ok {
		return tv.Type
	}
	return nil
}

// errResultCount reports how many of call's results are of type error.
func errResultCount(pass *lint.Pass, call *ast.CallExpr) int {
	tv, ok := pass.Info.Types[call]
	if !ok {
		return 0
	}
	n := 0
	for _, t := range resultTypes(tv.Type) {
		if isErrorType(t) {
			n++
		}
	}
	return n
}

// resultTypes flattens a call's result type: a tuple's components, or the
// single type itself (nil for a void call).
func resultTypes(t types.Type) []types.Type {
	switch t := t.(type) {
	case nil:
		return nil
	case *types.Tuple:
		out := make([]types.Type, t.Len())
		for i := 0; i < t.Len(); i++ {
			out[i] = t.At(i).Type()
		}
		return out
	default:
		return []types.Type{t}
	}
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// calleeLabel renders the callee for diagnostics: pkg.Fn, recv.Method, or
// a generic fallback for indirect calls.
func calleeLabel(call *ast.CallExpr) string {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		if x, ok := ast.Unparen(fn.X).(*ast.Ident); ok {
			return x.Name + "." + fn.Sel.Name
		}
		return fn.Sel.Name
	default:
		return "call"
	}
}
