package lifecycle

import (
	"context"
	"errors"
	"os"
	"syscall"
	"testing"
	"time"
)

// TestFirstSignalCancelsWithCause: phase one — the first signal cancels the
// context with a SignalError cause that classifies as an interrupt.
func TestFirstSignalCancelsWithCause(t *testing.T) {
	sigs := make(chan os.Signal, 2)
	ctx, stop := Context(context.Background(), sigs, func() {
		t.Error("hard abort invoked on first signal")
	})
	defer stop()

	sigs <- syscall.SIGINT
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled after first signal")
	}
	cause := context.Cause(ctx)
	var se *SignalError
	if !errors.As(cause, &se) {
		t.Fatalf("cause = %v, want *SignalError", cause)
	}
	if se.Sig != syscall.SIGINT {
		t.Errorf("SignalError.Sig = %v, want SIGINT", se.Sig)
	}
	if !Interrupted(cause) {
		t.Errorf("Interrupted(%v) = false, want true", cause)
	}
}

// TestSecondSignalHardAborts: phase two — a second signal invokes the hard
// abort hook.
func TestSecondSignalHardAborts(t *testing.T) {
	sigs := make(chan os.Signal, 2)
	hard := make(chan struct{})
	ctx, stop := Context(context.Background(), sigs, func() { close(hard) })
	defer stop()

	sigs <- syscall.SIGINT
	<-ctx.Done()
	sigs <- syscall.SIGTERM
	select {
	case <-hard:
	case <-time.After(5 * time.Second):
		t.Fatal("hard abort not invoked after second signal")
	}
}

// TestStopWithoutSignal: a clean run stops the watcher; the context is
// released without a SignalError and later signals do nothing.
func TestStopWithoutSignal(t *testing.T) {
	sigs := make(chan os.Signal, 2)
	ctx, stop := Context(context.Background(), sigs, func() {
		t.Error("hard abort invoked after stop")
	})
	stop()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("stop did not release the context")
	}
	var se *SignalError
	if errors.As(context.Cause(ctx), &se) {
		t.Errorf("cause = %v, want no SignalError without a signal", context.Cause(ctx))
	}
}

// TestParentDeadlinePropagates: a parent deadline cancels the derived
// context and classifies as an interrupt (resumable), not a failure.
func TestParentDeadlinePropagates(t *testing.T) {
	parent, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	sigs := make(chan os.Signal, 2)
	ctx, stop := Context(parent, sigs, nil)
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("parent deadline did not propagate")
	}
	if !Interrupted(context.Cause(ctx)) {
		t.Errorf("Interrupted(%v) = false after deadline", context.Cause(ctx))
	}
}

func TestInterrupted(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{context.Canceled, true},
		{context.DeadlineExceeded, true},
		{&SignalError{Sig: syscall.SIGTERM}, true},
		{errors.New("boom"), false},
		{nil, false},
	} {
		if got := Interrupted(tc.err); got != tc.want {
			t.Errorf("Interrupted(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
